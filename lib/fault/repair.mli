(** Self-healing spanner repair after faults.

    When a fault plan strikes, both the graph and its spanner lose edges: the
    damaged spanner [H'] may be disconnected inside the survivor graph [G']
    and its 3-detours may be gone.  {!run} re-adds edges of [G'] to [H'] in
    two deterministic phases and re-certifies the result:

    + {b connectivity}: scan [G']'s edges in canonical sorted order and keep
      every edge that merges two [H']-components (union–find), until [H']
      has one component per [G']-component;
    + {b stretch}: re-add every [G']-edge whose [H']-detour exceeds [alpha]
      ({!Stretch.violations}) — after this pass the distance stretch is
      [<= alpha] by construction, which {!Stretch.exact} re-certifies.

    The report carries the repair cost (edges re-added per phase) and the
    certification outcome; {!certify_dc} additionally runs the Definition 4
    probabilistic DC check ({!Dc_check.estimate}) on the repaired spanner. *)

type report = {
  spanner : Graph.t;  (** the repaired spanner (the damaged input is not mutated) *)
  added : Graph.edge list;  (** edges re-added, in the order they were added *)
  connectivity_added : int;  (** edges added by the connectivity phase *)
  stretch_added : int;  (** edges added by the stretch phase *)
  connected : bool;
      (** the repaired spanner has exactly one component per survivor-graph
          component (the best connectivity the survivor topology allows) *)
  dist_stretch : int;
      (** [Stretch.exact] of the repaired spanner against the survivor graph;
          [max_int] only if [connected] is false *)
  certified : bool;  (** [connected] and [dist_stretch <= alpha] *)
}

val run : ?alpha:int -> Graph.t -> within:Graph.t -> report
(** [run damaged ~within] heals spanner [damaged] inside the survivor graph
    [within] ([alpha] defaults to the paper's headline distance stretch 3).
    Deterministic: edges are scanned in sorted order, no randomness is
    consumed.  Raises [Invalid_argument] if node counts differ or [damaged]
    is not a subgraph of [within]. *)

val certify_dc :
  ?trials:int -> ?beta:float -> alpha:float -> report -> within:Graph.t -> Prng.t -> Dc_check.estimate
(** Definition 4 on the repaired spanner: wrap it with the randomized
    shortest-path matching router over the survivor graph and sample routing
    problems through {!Dc_check.estimate}.  [beta] defaults to the Theorem 3
    envelope [12 (1 + 2 sqrt Delta) log n] of the survivor graph.  Raises
    [Invalid_argument] if [within] is disconnected — Definition 4 samples
    whole-graph problems (permutations), which dead isolated nodes cannot
    route; use {!run}'s [certified] verdict for that regime. *)
