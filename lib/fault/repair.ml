type report = {
  spanner : Graph.t;
  added : Graph.edge list;
  connectivity_added : int;
  stretch_added : int;
  connected : bool;
  dist_stretch : int;
  certified : bool;
}

let m_added = Metrics.counter "repair.edges_added"

let run ?(alpha = 3) damaged ~within =
  Trace.with_span ~name:"repair.run" @@ fun () ->
  if Graph.n damaged <> Graph.n within then invalid_arg "Repair.run: node counts differ";
  if not (Graph.is_subgraph damaged ~of_:within) then
    invalid_arg "Repair.run: damaged spanner is not a subgraph of the survivor graph";
  if alpha < 1 then invalid_arg "Repair.run: alpha < 1";
  let h = Graph.copy damaged in
  let added = ref [] in
  (* re-added edges keep their survivor-graph weight so the repaired spanner
     stays a subgraph of [within] in the weighted sense too *)
  let add u v =
    if Graph.add_edge ~weight:(Graph.edge_weight within u v) h u v then begin
      added := (min u v, max u v) :: !added;
      Metrics.incr m_added
    end
  in
  (* phase 1: connectivity — canonical edge order so the repair is a pure
     function of the damaged/survivor edge sets *)
  let connectivity_added =
    Trace.with_span ~name:"repair.connectivity" @@ fun () ->
    let uf = Union_find.create (Graph.n h) in
    Graph.iter_edges h (fun u v -> ignore (Union_find.union uf u v));
    let candidates = Graph.edge_array within in
    Array.sort compare candidates;
    let before = List.length !added in
    Array.iter
      (fun (u, v) -> if Union_find.union uf u v then add u v)
      candidates;
    List.length !added - before
  in
  (* phase 2: stretch — every surviving edge must have a detour <= alpha;
     re-adding a violating edge fixes it outright (distance becomes 1) and
     adding edges never lengthens any other detour *)
  let stretch_added =
    Trace.with_span ~name:"repair.stretch" @@ fun () ->
    let violations = Stretch.violations within h ~bound:alpha in
    List.iter (fun (u, v) -> add u v) violations;
    List.length violations
  in
  (* re-certify *)
  let connected = Connectivity.count h = Connectivity.count within in
  let dist_stretch = Trace.with_span ~name:"repair.certify" @@ fun () -> Stretch.exact within h in
  let certified = connected && dist_stretch <> max_int && dist_stretch <= alpha in
  Log.info
    ~fields:
      [
        ("connectivity_added", string_of_int connectivity_added);
        ("stretch_added", string_of_int stretch_added);
        ("dist_stretch", if dist_stretch = max_int then "inf" else string_of_int dist_stretch);
        ("certified", string_of_bool certified);
      ]
    "repair.done";
  if not certified then
    Log.warn
      ~fields:
        [
          ("connected", string_of_bool connected);
          ("dist_stretch", if dist_stretch = max_int then "inf" else string_of_int dist_stretch);
          ("alpha", string_of_int alpha);
        ]
      "repair.uncertified";
  {
    spanner = h;
    added = List.rev !added;
    connectivity_added;
    stretch_added;
    connected;
    dist_stretch;
    certified;
  }

let certify_dc ?(trials = 8) ?beta ~alpha report ~within rng =
  if not (Connectivity.is_connected within) then
    invalid_arg
      "Repair.certify_dc: the survivor graph is disconnected (Definition 4 samples \
       whole-graph routing problems)";
  let beta =
    match beta with
    | Some b -> b
    | None ->
        let delta = float_of_int (max 1 (Graph.max_degree within)) in
        12.0 *. (1.0 +. (2.0 *. sqrt delta)) *. Stats.log2 (float_of_int (max 2 (Graph.n within)))
  in
  let dc = Dc.of_sp_router ~name:"repair" ~graph:within ~spanner:report.spanner in
  Dc_check.estimate ~trials ~alpha ~beta dc rng
