type stats = {
  delivered : int;
  dropped : int;
  retransmits : int;
  reroutes : int;
  makespan : int;
  max_queue : int;
  avg_latency : float;
  congestion : int;
  dilation : int;
  forward_load : int;
  failed_nodes : int;
  failed_edges : int;
}

type packet = {
  id : int;
  mutable path : Routing.path;
  mutable pos : int;
  mutable attempts : int;  (** retransmissions consumed so far *)
}

let remaining p = Array.length p.path - 1 - p.pos

let m_rounds = Metrics.counter "fault_sim.rounds"
let m_retransmits = Metrics.counter "fault_sim.retransmits"
let m_reroutes = Metrics.counter "fault_sim.reroutes"
let m_dropped = Metrics.counter "fault_sim.dropped"
let m_losses = Metrics.counter "fault_sim.losses"
let m_node_faults = Metrics.counter "fault_sim.node_faults"
let m_edge_faults = Metrics.counter "fault_sim.edge_faults"

let run ?(timeout = 4) ?(max_attempts = 5) ?(backoff_cap = 64) ~n ~network ~plan routing =
  Trace.with_span ~name:"fault_sim.run" @@ fun () ->
  Array.iter
    (fun p -> if Array.length p = 0 then invalid_arg "Fault_sim.run: empty path")
    routing;
  if timeout < 1 then invalid_arg "Fault_sim.run: timeout < 1";
  if max_attempts < 0 then invalid_arg "Fault_sim.run: negative max_attempts";
  if backoff_cap < 1 then invalid_arg "Fault_sim.run: backoff_cap < 1";
  if Fault_plan.n plan <> n then invalid_arg "Fault_sim.run: plan node count differs";
  let k = Array.length routing in
  (* workload invariants of the *original* routing, as in Packet_sim *)
  let congestion = Routing.congestion ~n routing in
  let dilation = Array.fold_left (fun acc p -> max acc (Routing.length p)) 0 routing in
  let forward_load =
    let loads = Array.make n 0 in
    Array.iter
      (fun path ->
        let seen = Hashtbl.create 8 in
        for i = 0 to Array.length path - 2 do
          if not (Hashtbl.mem seen path.(i)) then begin
            Hashtbl.add seen path.(i) ();
            loads.(path.(i)) <- loads.(path.(i)) + 1
          end
        done)
      routing;
    Array.fold_left max 0 loads
  in
  (* fault state: [alive]/[removed] answer liveness queries on the hot path;
     [survivor] mirrors them as a graph for BFS reroutes ([Csr.snapshot]'s
     version cache rebuilds its CSR only when the survivor changed since the
     last reroute) *)
  let alive = Array.make n true in
  let removed = Hashtbl.create 16 in
  let survivor = Graph.copy network in
  let edge_key u v = if u < v then (u, v) else (v, u) in
  let link_ok u v = alive.(v) && not (Hashtbl.mem removed (edge_key u v)) in
  let failed_nodes = ref 0 and failed_edges = ref 0 in
  let apply_fault = function
    | Fault_plan.Fail_node v ->
        if alive.(v) then begin
          alive.(v) <- false;
          incr failed_nodes;
          Metrics.incr m_node_faults;
          ignore (Graph.isolate survivor v)
        end
    | Fault_plan.Fail_edge (u, v) ->
        if not (Hashtbl.mem removed (edge_key u v)) then begin
          Hashtbl.replace removed (edge_key u v) ();
          incr failed_edges;
          Metrics.incr m_edge_faults;
          ignore (Graph.remove_edge survivor u v)
        end
  in
  let csr () = Csr.snapshot survivor in
  (* packet state *)
  let delivery = Array.make k (-1) in
  let queues = Array.make n [] in
  let retries : (int, packet list) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref 0 in
  let dropped = ref 0 in
  let retransmits = ref 0 in
  let reroutes = ref 0 in
  Array.iteri
    (fun id path ->
      let p = { id; path; pos = 0; attempts = 0 } in
      if remaining p = 0 then delivery.(id) <- 0
      else begin
        queues.(path.(0)) <- p :: queues.(path.(0));
        incr pending
      end)
    routing;
  let max_queue = ref (Array.fold_left (fun acc q -> max acc (List.length q)) 0 queues) in
  let round = ref 0 in
  let drop p =
    incr dropped;
    decr pending;
    Metrics.incr m_dropped;
    Log.warn
      ~fields:[ ("packet", string_of_int p.id); ("attempts", string_of_int p.attempts) ]
      "fault_sim.drop"
  in
  (* a lost packet: schedule a retransmission with capped exponential
     backoff, or drop it when the attempt budget is spent *)
  let lose p =
    Metrics.incr m_losses;
    if p.attempts >= max_attempts then drop p
    else begin
      p.attempts <- p.attempts + 1;
      let backoff =
        (* timeout * 2^(attempts-1), saturating at backoff_cap *)
        let b = ref timeout in
        for _ = 2 to p.attempts do
          b := min backoff_cap (!b * 2)
        done;
        min backoff_cap !b
      in
      let due = !round + backoff in
      let prev = Option.value (Hashtbl.find_opt retries due) ~default:[] in
      Hashtbl.replace retries due (p :: prev)
    end
  in
  (* the original path is usable iff every node is alive and every hop link
     still exists *)
  let path_intact path =
    let ok = ref (alive.(path.(0))) in
    for i = 0 to Array.length path - 2 do
      if !ok && not (link_ok path.(i) path.(i + 1)) then ok := false
    done;
    !ok
  in
  (* re-inject a due packet at its source, rerouting if the original path
     broke; drop when the endpoints are dead or no survivor path exists *)
  let reinject p =
    let original = routing.(p.id) in
    let src = original.(0) and dst = original.(Array.length original - 1) in
    if not (alive.(src) && alive.(dst)) then drop p
    else if path_intact original then begin
      p.path <- original;
      p.pos <- 0;
      incr retransmits;
      Metrics.incr m_retransmits;
      queues.(src) <- p :: queues.(src)
    end
    else
      match Bfs.shortest_path (csr ()) src dst with
      | None -> drop p
      | Some path ->
          p.path <- path;
          p.pos <- 0;
          incr retransmits;
          incr reroutes;
          Metrics.incr m_retransmits;
          Metrics.incr m_reroutes;
          if Log.enabled Log.Debug then
            Log.debug
              ~fields:
                [ ("packet", string_of_int p.id); ("hops", string_of_int (Array.length path - 1)) ]
              "fault_sim.reroute";
          queues.(src) <- p :: queues.(src)
  in
  (* Greedy schedules finish within C*D + D; faulted runs additionally pay
     for retransmission waves (reroutes are <= n hops) and backoff waits.
     The guard is a safety net — a run that exceeds it drops what is left. *)
  let base_guard = (congestion * dilation) + dilation + 1 in
  let guard =
    if Fault_plan.is_empty plan then base_guard
    else
      Fault_plan.last_round plan
      + ((base_guard + (congestion * n) + backoff_cap) * (max_attempts + 2))
  in
  let events = ref (Fault_plan.events plan) in
  while !pending > 0 && !round <= guard do
    incr round;
    (* 1. faults scheduled for this round strike *)
    (match !events with
    | (r, faults) :: rest when r = !round ->
        List.iter
          (fun f ->
            apply_fault f;
            if Log.enabled Log.Info then
              match f with
              | Fault_plan.Fail_node v ->
                  Log.info
                    ~fields:[ ("round", string_of_int r); ("node", string_of_int v) ]
                    "fault.node"
              | Fault_plan.Fail_edge (u, v) ->
                  Log.info
                    ~fields:
                      [ ("round", string_of_int r); ("edge", Printf.sprintf "%d-%d" u v) ]
                    "fault.edge")
          faults;
        events := rest;
        (* packets queued at nodes that just died are lost *)
        for v = 0 to n - 1 do
          if (not alive.(v)) && queues.(v) <> [] then begin
            let victims = queues.(v) in
            queues.(v) <- [];
            (* ascending id order so loss handling is canonical *)
            List.iter lose (List.sort (fun a b -> compare a.id b.id) victims)
          end
        done
    | _ -> ());
    (* 2. retransmissions due this round re-enter their source queue *)
    (match Hashtbl.find_opt retries !round with
    | None -> ()
    | Some due ->
        Hashtbl.remove retries !round;
        List.iter reinject (List.sort (fun a b -> compare a.id b.id) due));
    (* 3. forwarding sweep — identical to Packet_sim: each node forwards its
       furthest-to-go packet (ties by id); a transmission into a failure
       burns the slot and loses the packet *)
    let arrivals = ref [] in
    for v = 0 to n - 1 do
      match queues.(v) with
      | [] -> ()
      | q ->
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | None -> Some p
                | Some b ->
                    if
                      remaining p > remaining b
                      || (remaining p = remaining b && p.id < b.id)
                    then Some p
                    else acc)
              None q
          in
          (match best with
          | None -> ()
          | Some p ->
              queues.(v) <- List.filter (fun q -> q.id <> p.id) q;
              let next = p.path.(p.pos + 1) in
              if not (link_ok v next) then lose p
              else begin
                p.pos <- p.pos + 1;
                if remaining p = 0 then begin
                  delivery.(p.id) <- !round;
                  decr pending
                end
                else arrivals := p :: !arrivals
              end)
    done;
    List.iter (fun p -> queues.(p.path.(p.pos)) <- p :: queues.(p.path.(p.pos))) !arrivals;
    let widest = Array.fold_left (fun acc q -> max acc (List.length q)) 0 queues in
    max_queue := max !max_queue widest;
    Metrics.incr m_rounds
  done;
  if !pending > 0 then begin
    (* guard tripped (can only happen under faults): whatever is still in
       flight or awaiting retransmission counts as dropped *)
    dropped := !dropped + !pending;
    Metrics.add m_dropped !pending;
    Log.warn
      ~fields:[ ("round", string_of_int !round); ("pending", string_of_int !pending) ]
      "fault_sim.guard_tripped";
    pending := 0
  end;
  let delivered = ref 0 in
  let makespan = ref 0 in
  let latency_sum = ref 0.0 in
  Array.iter
    (fun d ->
      if d >= 0 then begin
        incr delivered;
        makespan := max !makespan d;
        latency_sum := !latency_sum +. float_of_int d
      end)
    delivery;
  let avg_latency = if !delivered = 0 then 0.0 else !latency_sum /. float_of_int !delivered in
  {
    delivered = !delivered;
    dropped = !dropped;
    retransmits = !retransmits;
    reroutes = !reroutes;
    makespan = !makespan;
    max_queue = !max_queue;
    avg_latency;
    congestion;
    dilation;
    forward_load;
    failed_nodes = !failed_nodes;
    failed_edges = !failed_edges;
  }

let base_stats s =
  {
    Packet_sim.makespan = s.makespan;
    max_queue = s.max_queue;
    avg_latency = s.avg_latency;
    congestion = s.congestion;
    dilation = s.dilation;
    forward_load = s.forward_load;
  }
