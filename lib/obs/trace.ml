type span = {
  name : string;
  tid : int;
  ts_us : float;
  dur_us : float;
  minor_words : float;
  major_words : float;
  major_collections : int;
  args : (string * string) list;
}

type counter_sample = {
  cname : string;
  ctid : int;
  cts_us : float;
  values : (string * float) list;
}

(* Spans are appended under a mutex at span *end*; a span-per-phase design
   means contention is negligible (spans are milliseconds-scale, not
   per-node).  The lists are kept reversed and flipped on read.
   DOMAIN-SAFE: every read and write of [spans] and [counters] goes through
   [mutex]. *)
let mutex = Mutex.create ()
let spans : span list ref = ref []
let counters : counter_sample list ref = ref []

let record s = Mutex.protect mutex (fun () -> spans := s :: !spans)

let domain_id () = (Domain.self () :> int)

let counter ?ts_us ~name values =
  if !Obs.tracing then begin
    let ts = match ts_us with Some t -> t | None -> Obs.now_us () in
    let s = { cname = name; ctid = domain_id (); cts_us = ts; values } in
    Mutex.protect mutex (fun () -> counters := s :: !counters)
  end

(* One memory sample per call site: current heap plus RSS when procfs is
   there.  Emitted at every span end, this draws the memory timeline under
   the span flamegraph in the trace viewer. *)
let memory_counter ?ts_us heap_words =
  let values =
    ("heap_words", float_of_int heap_words)
    ::
    (match Obs.rss_kb () with Some kb -> [ ("rss_kb", float_of_int kb) ] | None -> [])
  in
  counter ?ts_us ~name:"memory" values

let with_span ?(args = []) ~name f =
  if not !Obs.tracing then f ()
  else begin
    let ts = Obs.now_us () in
    let gc0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let gc1 = Gc.quick_stat () in
        let te = Obs.now_us () in
        record
          {
            name;
            tid = domain_id ();
            ts_us = ts;
            dur_us = te -. ts;
            minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
            major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
            major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
            args;
          };
        memory_counter ~ts_us:te gc1.Gc.heap_words)
      f
  end

let instant ?(args = []) name =
  if !Obs.tracing then
    record
      {
        name;
        tid = domain_id ();
        ts_us = Obs.now_us ();
        dur_us = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
        major_collections = 0;
        args;
      }

let snapshot () = Mutex.protect mutex (fun () -> List.rev !spans)

let counter_snapshot () = Mutex.protect mutex (fun () -> List.rev !counters)

let clear () =
  Mutex.protect mutex (fun () ->
      spans := [];
      counters := [])

let event_json s =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","cat":"dcs","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{|}
       (Obs.json_escape s.name) s.tid (Obs.json_float s.ts_us) (Obs.json_float s.dur_us));
  Buffer.add_string buf
    (Printf.sprintf {|"minor_words":%s,"major_words":%s,"major_collections":%d|}
       (Obs.json_float s.minor_words) (Obs.json_float s.major_words) s.major_collections);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf {|,"%s":"%s"|} (Obs.json_escape k) (Obs.json_escape v)))
    s.args;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Chrome counter events ("ph":"C"): each key in [args] becomes one series
   of the counter track named [cname]. *)
let counter_json c =
  let buf = Buffer.create 120 in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","cat":"dcs","ph":"C","pid":1,"tid":%d,"ts":%s,"args":{|}
       (Obs.json_escape c.cname) c.ctid (Obs.json_float c.cts_us));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%s|} (Obs.json_escape k) (Obs.json_float v)))
    c.values;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  let sep = ref false in
  let item s =
    if !sep then Buffer.add_char buf ',';
    sep := true;
    Buffer.add_char buf '\n';
    Buffer.add_string buf s
  in
  List.iter (fun s -> item (event_json s)) (snapshot ());
  List.iter (fun c -> item (counter_json c)) (counter_snapshot ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let summary () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let count, total = try Hashtbl.find tbl s.name with Not_found -> (0, 0.0) in
      Hashtbl.replace tbl s.name (count + 1, total +. s.dur_us))
    (snapshot ());
  Hashtbl.fold (fun name (count, total) acc -> (name, count, total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type profile_row = {
  pname : string;
  pcount : int;
  ptotal_us : float;
  pminor_words : float;
  pmajor_words : float;
  pmajor_collections : int;
}

(* Per-span-name attribution of wall time, allocation and major collections:
   the data behind the CLI's [--profile] table.  Sorted by total time,
   busiest first (ties by name, so a deterministic workload prints a
   deterministic table). *)
let profile () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let r =
        try Hashtbl.find tbl s.name
        with Not_found ->
          {
            pname = s.name;
            pcount = 0;
            ptotal_us = 0.0;
            pminor_words = 0.0;
            pmajor_words = 0.0;
            pmajor_collections = 0;
          }
      in
      Hashtbl.replace tbl s.name
        {
          r with
          pcount = r.pcount + 1;
          ptotal_us = r.ptotal_us +. s.dur_us;
          pminor_words = r.pminor_words +. s.minor_words;
          pmajor_words = r.pmajor_words +. s.major_words;
          pmajor_collections = r.pmajor_collections + s.major_collections;
        })
    (snapshot ());
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.ptotal_us a.ptotal_us with 0 -> compare a.pname b.pname | c -> c)

let write path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))

(* ---- activation ---- *)

(* DOMAIN-SAFE: mutated only by [enable], which runs during single-domain
   CLI/env startup before any Parallel fan-out; the at_exit hook reads them
   after all domains have joined. *)
let sink = ref None
let hook_registered = ref false

(* An unwritable sink must not turn a finished run into a non-zero exit. *)
let write_or_warn f =
  try write f
  with Sys_error msg ->
    Log.error ~fields:[ ("sink", "trace"); ("path", f); ("error", msg) ] "obs.write_failed"

let enable ~file =
  Obs.set_tracing true;
  sink := Some file;
  if not !hook_registered then begin
    hook_registered := true;
    at_exit (fun () -> match !sink with None -> () | Some f -> write_or_warn f)
  end

let () =
  match Sys.getenv_opt "DCS_TRACE" with
  | Some f when String.trim f <> "" -> enable ~file:(String.trim f)
  | _ -> ()
