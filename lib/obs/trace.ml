type span = {
  name : string;
  tid : int;
  ts_us : float;
  dur_us : float;
  minor_words : float;
  major_words : float;
  args : (string * string) list;
}

(* Spans are appended under a mutex at span *end*; a span-per-phase design
   means contention is negligible (spans are milliseconds-scale, not
   per-node).  The list is kept reversed and flipped on read.
   DOMAIN-SAFE: every read and write of [spans] goes through [mutex]. *)
let mutex = Mutex.create ()
let spans : span list ref = ref []

let record s = Mutex.protect mutex (fun () -> spans := s :: !spans)

let domain_id () = (Domain.self () :> int)

let with_span ?(args = []) ~name f =
  if not !Obs.tracing then f ()
  else begin
    let ts = Obs.now_us () in
    let gc0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let gc1 = Gc.quick_stat () in
        record
          {
            name;
            tid = domain_id ();
            ts_us = ts;
            dur_us = Obs.now_us () -. ts;
            minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
            major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
            args;
          })
      f
  end

let instant ?(args = []) name =
  if !Obs.tracing then
    record
      {
        name;
        tid = domain_id ();
        ts_us = Obs.now_us ();
        dur_us = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
        args;
      }

let snapshot () = Mutex.protect mutex (fun () -> List.rev !spans)

let clear () = Mutex.protect mutex (fun () -> spans := [])

let event_json s =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","cat":"dcs","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{|}
       (Obs.json_escape s.name) s.tid (Obs.json_float s.ts_us) (Obs.json_float s.dur_us));
  Buffer.add_string buf
    (Printf.sprintf {|"minor_words":%s,"major_words":%s|} (Obs.json_float s.minor_words)
       (Obs.json_float s.major_words));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf {|,"%s":"%s"|} (Obs.json_escape k) (Obs.json_escape v)))
    s.args;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Buffer.add_string buf (event_json s))
    (snapshot ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let summary () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let count, total = try Hashtbl.find tbl s.name with Not_found -> (0, 0.0) in
      Hashtbl.replace tbl s.name (count + 1, total +. s.dur_us))
    (snapshot ());
  Hashtbl.fold (fun name (count, total) acc -> (name, count, total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let write path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))

(* ---- activation ---- *)

(* DOMAIN-SAFE: mutated only by [enable], which runs during single-domain
   CLI/env startup before any Parallel fan-out; the at_exit hook reads them
   after all domains have joined. *)
let sink = ref None
let hook_registered = ref false

(* An unwritable sink must not turn a finished run into a non-zero exit. *)
let write_or_warn f =
  try write f
  with Sys_error msg -> Printf.eprintf "dcs_obs: cannot write trace: %s\n%!" msg

let enable ~file =
  Obs.set_tracing true;
  sink := Some file;
  if not !hook_registered then begin
    hook_registered := true;
    at_exit (fun () -> match !sink with None -> () | Some f -> write_or_warn f)
  end

let () =
  match Sys.getenv_opt "DCS_TRACE" with
  | Some f when String.trim f <> "" -> enable ~file:(String.trim f)
  | _ -> ()
