(* DOMAIN-SAFE: both flags are flipped only during single-domain startup
   (CLI flag / env-var activation) and are read-only while Parallel spawns
   domains; a stale read can only skip one observation, never corrupt. *)
let tracing = ref false
let metrics = ref false

let set_tracing b = tracing := b
let set_metrics b = metrics := b

(* Anchor timestamps to process start so trace [ts] values stay small enough
   to read in chrome://tracing without zooming from the epoch. *)
let t0 = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. t0) *. 1e6

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

(* ---- resident-set sampling ---- *)

(* DOMAIN-SAFE: a one-way latch cleared on the first failed probe; a stale
   [true] read costs one more failing open, a stale [false] read skips one
   sample.  Never set back to [true]. *)
let statm_available = ref true

(* /proc/<pid>/statm reports sizes in pages; the kernel ABI fixes the page
   size at 4 KiB on every platform we target, so we avoid shelling out to
   getconf and convert directly. *)
let page_kb = 4

let rss_kb () =
  if not !statm_available then None
  else
    match open_in "/proc/self/statm" with
    | exception Sys_error _ ->
        statm_available := false;
        None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            match String.split_on_char ' ' (input_line ic) with
            | exception End_of_file ->
                statm_available := false;
                None
            | _size :: resident :: _ -> (
                match int_of_string_opt resident with
                | Some pages -> Some (pages * page_kb)
                | None ->
                    statm_available := false;
                    None)
            | _ ->
                statm_available := false;
                None)
