(* DOMAIN-SAFE: both flags are flipped only during single-domain startup
   (CLI flag / env-var activation) and are read-only while Parallel spawns
   domains; a stale read can only skip one observation, never corrupt. *)
let tracing = ref false
let metrics = ref false

let set_tracing b = tracing := b
let set_metrics b = metrics := b

(* Anchor timestamps to process start so trace [ts] values stay small enough
   to read in chrome://tracing without zooming from the epoch. *)
let t0 = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. t0) *. 1e6

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x || Float.abs x = Float.infinity then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x
