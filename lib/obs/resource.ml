let g_heap_words = Metrics.gauge "resource.heap_words"
let g_rss_kb = Metrics.gauge "resource.rss_kb"

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let rss_kb = Obs.rss_kb

let sample () =
  if !Obs.metrics || !Obs.tracing then begin
    let heap = heap_words () in
    let rss = Obs.rss_kb () in
    Metrics.set_gauge g_heap_words heap;
    (match rss with Some kb -> Metrics.set_gauge g_rss_kb kb | None -> ());
    let values =
      ("heap_words", float_of_int heap)
      :: (match rss with Some kb -> [ ("rss_kb", float_of_int kb) ] | None -> [])
    in
    Trace.counter ~name:"memory" values
  end

let peak_rss_kb () = Metrics.gauge_peak g_rss_kb
let peak_heap_words () = Metrics.gauge_peak g_heap_words
