(* Shard count: a power of two comfortably above the DCS_DOMAINS clamp (64);
   domain ids are folded in by [land].  Two domains whose ids collide share a
   cell, which is still exact because the cell is atomic. *)
let shards = 128
let mask = shards - 1

let shard () = (Domain.self () :> int) land mask

type counter = { cells : int Atomic.t array }

type gauge = { last : int Atomic.t; peak : int Atomic.t }

(* Power-of-two bins: index 0 holds v <= 0, index i >= 1 holds
   2^(i-1) <= v < 2^i.  63 bins cover the whole int range. *)
type histo = {
  buckets : int Atomic.t array;
  sum : int Atomic.t;
  mn : int Atomic.t;
  mx : int Atomic.t;
}

(* DOMAIN-SAFE: the three registry tables are only touched under
   [registry_mutex] ([intern]/[reset]); instruments themselves are arrays of
   [Atomic.t] cells, interned once at module load, so hot-path updates never
   touch the tables. *)
let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histos : (string, histo) Hashtbl.t = Hashtbl.create 16

let intern tbl name make =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace tbl name m;
          m)

let counter name =
  intern counters name (fun () -> { cells = Array.init shards (fun _ -> Atomic.make 0) })

let add c n = if !Obs.metrics then ignore (Atomic.fetch_and_add c.cells.(shard ()) n)

let incr c = add c 1

let counter_value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge name = intern gauges name (fun () -> { last = Atomic.make 0; peak = Atomic.make 0 })

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let set_gauge g v =
  if !Obs.metrics then begin
    Atomic.set g.last v;
    atomic_max g.peak v
  end

let gauge_last g = Atomic.get g.last
let gauge_peak g = Atomic.get g.peak

let histo name =
  intern histos name (fun () ->
      {
        buckets = Array.init 64 (fun _ -> Atomic.make 0);
        sum = Atomic.make 0;
        mn = Atomic.make max_int;
        mx = Atomic.make min_int;
      })

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do
      i := !i + 1;
      x := !x lsr 1
    done;
    !i
  end

let observe h v =
  if !Obs.metrics then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.sum v);
    atomic_min h.mn v;
    atomic_max h.mx v
  end

let histo_count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let histo_stats h =
  let count = histo_count h in
  if count = 0 then (0, 0, 0, 0)
  else (count, Atomic.get h.sum, Atomic.get h.mn, Atomic.get h.mx)

(* ---- dumps ---- *)

let sorted_names tbl =
  Hashtbl.fold (fun name _ acc -> name :: acc) tbl [] |> List.sort compare

let nonempty_buckets h =
  let out = ref [] in
  Array.iteri
    (fun i b ->
      let c = Atomic.get b in
      if c > 0 then out := (i, c) :: !out)
    h.buckets;
  List.rev !out

(* The exclusive upper bound of bucket [i] (1 for the v <= 0 bucket is
   rendered as 1: "v < 1").  [1 lsl i] overflows OCaml's 63-bit int for the
   top buckets (i >= 62), which used to render negative bounds; saturate to
   [max_int] instead. *)
let bucket_lt i = if i = 0 then 1 else if i >= 62 then max_int else 1 lsl i

(* The inclusive lower bound of bucket [i]; bucket 0 holds v <= 0 and has no
   finite lower bound, so report 0 (callers clamp to the observed min). *)
let bucket_lo i = if i <= 1 then 0 else 1 lsl (i - 1)

(* Quantile estimate interpolated from the pow-2 buckets: find the bucket
   holding the q-th rank, place the rank at the bucket's midpoint convention
   (rank + 0.5 of the way through the bucket's own counts), and clamp into
   the exact observed [min, max].  Resolution is the bucket width — within a
   factor of 2 above bucket 1 — which is what a pow-2 histogram can promise;
   exactness at the extremes comes from the clamp.  [nan] when empty. *)
let histo_quantile h q =
  let count = histo_count h in
  if count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int (count - 1) in
    let bucket = ref 0 and below = ref 0 in
    (* the scan always terminates inside the last nonempty bucket, because
       target <= count - 1 < count = the final cumulative total *)
    (try
       let cum = ref 0 in
       for i = 0 to Array.length h.buckets - 1 do
         let c = Atomic.get h.buckets.(i) in
         if c > 0 && target < float_of_int (!cum + c) then begin
           bucket := i;
           below := !cum;
           raise Exit
         end;
         cum := !cum + c
       done
     with Exit -> ());
    let c = max 1 (Atomic.get h.buckets.(!bucket)) in
    let frac = (target -. float_of_int !below +. 0.5) /. float_of_int c in
    let lo = float_of_int (bucket_lo !bucket) and hi = float_of_int (bucket_lt !bucket) in
    let v = lo +. (frac *. (hi -. lo)) in
    let mn = float_of_int (Atomic.get h.mn) and mx = float_of_int (Atomic.get h.mx) in
    Float.max mn (Float.min mx v)
  end

let to_json () =
  let buf = Buffer.create 1024 in
  let sep = ref false in
  let item s =
    if !sep then Buffer.add_char buf ',';
    sep := true;
    Buffer.add_string buf s
  in
  Buffer.add_string buf "{\n\"counters\":{";
  List.iter
    (fun name ->
      let c = Hashtbl.find counters name in
      item (Printf.sprintf "\n  \"%s\":%d" (Obs.json_escape name) (counter_value c)))
    (sorted_names counters);
  Buffer.add_string buf "},\n\"gauges\":{";
  sep := false;
  List.iter
    (fun name ->
      let g = Hashtbl.find gauges name in
      item
        (Printf.sprintf "\n  \"%s\":{\"last\":%d,\"peak\":%d}" (Obs.json_escape name)
           (gauge_last g) (gauge_peak g)))
    (sorted_names gauges);
  Buffer.add_string buf "},\n\"histograms\":{";
  sep := false;
  List.iter
    (fun name ->
      let h = Hashtbl.find histos name in
      let count, sum, mn, mx = histo_stats h in
      let mean = if count = 0 then 0.0 else float_of_int sum /. float_of_int count in
      let buckets =
        nonempty_buckets h
        |> List.map (fun (i, c) -> Printf.sprintf "{\"lt\":%d,\"count\":%d}" (bucket_lt i) c)
        |> String.concat ","
      in
      item
        (Printf.sprintf
           "\n  \
            \"%s\":{\"count\":%d,\"sum\":%d,\"mean\":%s,\"min\":%d,\"max\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[%s]}"
           (Obs.json_escape name) count sum (Obs.json_float mean) mn mx
           (Obs.json_float (histo_quantile h 0.5))
           (Obs.json_float (histo_quantile h 0.9))
           (Obs.json_float (histo_quantile h 0.99))
           buckets))
    (sorted_names histos);
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf

let to_csv () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,field,value\n";
  let row kind name field value =
    Buffer.add_string buf (Printf.sprintf "%s,%s,%s,%s\n" kind name field value)
  in
  List.iter
    (fun name -> row "counter" name "total" (string_of_int (counter_value (Hashtbl.find counters name))))
    (sorted_names counters);
  List.iter
    (fun name ->
      let g = Hashtbl.find gauges name in
      row "gauge" name "last" (string_of_int (gauge_last g));
      row "gauge" name "peak" (string_of_int (gauge_peak g)))
    (sorted_names gauges);
  List.iter
    (fun name ->
      let h = Hashtbl.find histos name in
      let count, sum, mn, mx = histo_stats h in
      let mean = if count = 0 then 0.0 else float_of_int sum /. float_of_int count in
      row "histo" name "count" (string_of_int count);
      row "histo" name "sum" (string_of_int sum);
      row "histo" name "mean" (Obs.json_float mean);
      row "histo" name "min" (string_of_int mn);
      row "histo" name "max" (string_of_int mx);
      row "histo" name "p50" (Obs.json_float (histo_quantile h 0.5));
      row "histo" name "p90" (Obs.json_float (histo_quantile h 0.9));
      row "histo" name "p99" (Obs.json_float (histo_quantile h 0.99));
      List.iter
        (fun (i, c) ->
          row "histo" name (Printf.sprintf "bucket_lt_%d" (bucket_lt i)) (string_of_int c))
        (nonempty_buckets h))
    (sorted_names histos);
  Buffer.contents buf

let write path =
  let out = if Filename.check_suffix path ".csv" then to_csv () else to_json () in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc out)

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells) counters;
      Hashtbl.iter
        (fun _ g ->
          Atomic.set g.last 0;
          Atomic.set g.peak 0)
        gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.sum 0;
          Atomic.set h.mn max_int;
          Atomic.set h.mx min_int)
        histos)

(* ---- activation ---- *)

(* DOMAIN-SAFE: mutated only by [enable] during single-domain CLI/env
   startup; the at_exit hook reads them after all domains have joined. *)
let sink = ref None
let hook_registered = ref false

(* An unwritable sink must not turn a finished run into a non-zero exit. *)
let write_or_warn f =
  try write f
  with Sys_error msg ->
    Log.error ~fields:[ ("sink", "metrics"); ("path", f); ("error", msg) ] "obs.write_failed"

let enable ~file =
  Obs.set_metrics true;
  sink := Some file;
  if not !hook_registered then begin
    hook_registered := true;
    at_exit (fun () -> match !sink with None -> () | Some f -> write_or_warn f)
  end

let () =
  match Sys.getenv_opt "DCS_METRICS" with
  | Some f when String.trim f <> "" -> enable ~file:(String.trim f)
  | _ -> ()
