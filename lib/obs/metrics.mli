(** A process-wide registry of named counters, gauges and histograms.

    Handles are interned by name ([counter "bfs.runs"] always returns the
    same cell set), so instrumented modules create their handles once at
    module initialization and the hot path touches only the metric itself.

    {b Multicore.}  Counters are sharded per domain: an increment lands in
    the cell indexed by the calling domain's id (atomically, so shard-index
    collisions stay race-free), and readers fold the shards into one total.
    This keeps [Parallel.map_range] fan-outs free of a single contended
    cache line while remaining exact — the fold at read time is the "merge
    at join".  Gauges and histograms use atomics throughout.

    {b Zero overhead when disabled.}  Every mutator checks {!Obs.metrics}
    first; when the flag is off the call is a load, a branch and a return.
    Instrumented hot loops accumulate locally and call {!add} once per
    operation batch (e.g. one [add] per BFS run, not per node).

    Activation: [DCS_METRICS=<file>] (dumped by an [at_exit] hook, JSON by
    default, CSV when the file name ends in [.csv]) or the CLI [--metrics]
    option.  Mutating a metric never consumes randomness or changes
    algorithm behavior. *)

type counter
type gauge
type histo

val counter : string -> counter
(** Intern (find or create) the counter with this name. *)

val incr : counter -> unit
(** Add 1 (no-op when metrics are disabled). *)

val add : counter -> int -> unit
(** Add an arbitrary delta (no-op when metrics are disabled). *)

val counter_value : counter -> int
(** The per-domain shards folded into one total. *)

val gauge : string -> gauge
(** Intern the gauge with this name. *)

val set_gauge : gauge -> int -> unit
(** Record the current value; the peak (max ever set) is kept alongside. *)

val gauge_last : gauge -> int

val gauge_peak : gauge -> int

val histo : string -> histo
(** Intern the histogram with this name.  Observations are integers binned
    into powers of two ([v ≤ 0], [1], [2–3], [4–7], …). *)

val observe : histo -> int -> unit
(** Record one observation (no-op when metrics are disabled). *)

val histo_stats : histo -> int * int * int * int
(** [(count, sum, min, max)]; [(0, 0, 0, 0)] when empty. *)

val histo_quantile : histo -> float -> float
(** [histo_quantile h q] with [q] in [[0, 1]] ([0.5] is the median) estimates
    the q-th quantile by linear interpolation inside the pow-2 bucket holding
    that rank, clamped into the exact observed [[min, max]].  Accurate to the
    bucket width (a factor of 2); [nan] when the histogram is empty (which
    {!Obs.json_float} renders as [null]).  [q] outside [[0, 1]] is clamped. *)

val bucket_of : int -> int
(** The bucket index an observation lands in: [0] for [v <= 0], otherwise
    [i >= 1] such that [2^(i-1) <= v < 2^i].  Exposed for the histogram
    property tests. *)

val bucket_lt : int -> int
(** The exclusive upper bound of bucket [i] ([1] for bucket 0; saturated to
    [max_int] for the top buckets where [1 lsl i] would overflow). *)

val to_json : unit -> string
(** The whole registry as a JSON document (counters folded, metrics sorted
    by name — deterministic for a deterministic workload).  Histograms carry
    [count]/[sum]/[mean]/[min]/[max], the [p50]/[p90]/[p99] quantile
    estimates, and the nonempty buckets. *)

val to_csv : unit -> string
(** The registry as [kind,name,field,value] CSV rows — the same fields as
    {!to_json}, including [mean], [p50]/[p90]/[p99] and one
    [bucket_lt_<bound>] row per nonempty bucket. *)

val write : string -> unit
(** Write the registry to a file: CSV when the path ends in [.csv],
    JSON otherwise. *)

val enable : file:string -> unit
(** Turn metric collection on and arrange for {!write} [file] at process
    exit.  Idempotent: the last file wins, the hook is registered once. *)

val reset : unit -> unit
(** Zero every registered metric, keeping handles valid (tests). *)
