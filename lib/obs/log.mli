(** Leveled structured logging with a JSONL sink and an in-memory ring.

    Events are named ([fault.node], [repair.uncertified], …) and carry
    key/value context fields; each one is appended to a bounded ring buffer
    (readable via {!recent}, for tests and post-mortem inspection) and, when a
    sink is configured, written as one JSON line — machine-parseable with any
    JSONL tool, one object per event:

    {v {"ts_us":1234,"level":"warn","event":"fault_sim.drop","domain":0,"fields":{"packet":"17"}} v}

    {b Zero overhead when disabled.}  {!event} checks an atomic threshold
    first; with logging off (the default) the call is a load, a compare and a
    return.  Expensive context (anything you would compute just to log it)
    should be gated on {!enabled}.  [Error]-level events are the exception:
    they fall back to a single stderr line even when logging is off, because
    they replaced ad-hoc [eprintf] warnings that must not go silent.

    Activation: [DCS_LOG=<file>] (JSONL sink, level from [DCS_LOG_LEVEL],
    default [info]) or the CLI [--log FILE] option.  Logging never consumes
    randomness or changes algorithm behavior (the determinism contract of
    HACKING.md). *)

type level = Debug | Info | Warn | Error

type entry = {
  ts_us : float;  (** microseconds since process start, {!Obs.now_us} epoch *)
  level : level;
  event : string;  (** dotted event name, e.g. [repair.done] *)
  domain : int;  (** id of the domain that emitted the event *)
  fields : (string * string) list;  (** context key/value pairs *)
}

val enabled : level -> bool
(** [enabled l] is true when an event at level [l] would be recorded.  Use it
    to gate context computation that exists only to be logged. *)

val event : ?fields:(string * string) list -> level -> string -> unit
(** Record one event (ring buffer + sink if configured).  No-op below the
    active threshold, except [Error] which falls back to stderr when no
    logging is configured at all. *)

val debug : ?fields:(string * string) list -> string -> unit
val info : ?fields:(string * string) list -> string -> unit
val warn : ?fields:(string * string) list -> string -> unit
val error : ?fields:(string * string) list -> string -> unit

val set_level : level -> unit
(** Admit events at this level and above (ring buffer only unless a sink was
    opened with {!enable}). *)

val enable : ?level:level -> file:string -> unit -> unit
(** Open [file] as the JSONL sink (truncating) and set the threshold
    ([Info] by default).  The sink is flushed per line and closed at process
    exit.  An unopenable sink warns on stderr and leaves only the ring
    active. *)

val disable : unit -> unit
(** Close any sink and raise the threshold above [Error] (tests). *)

val recent : unit -> entry list
(** The buffered entries, oldest first (at most the ring capacity, 1024). *)

val clear : unit -> unit
(** Drop all buffered entries, keeping level and sink (tests). *)

val render : entry -> string
(** The JSONL rendering of one entry (no trailing newline). *)

val level_of_string : string -> level option
(** Parse ["debug"], ["info"], ["warn"]/["warning"], ["error"]
    (case-insensitive). *)

val level_name : level -> string
(** The lowercase name used in rendered entries. *)
