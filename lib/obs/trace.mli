(** Hierarchical tracing spans with Chrome trace-event JSON export.

    A span measures one phase of the pipeline: wall-clock duration plus the
    GC allocation delta (minor/major words allocated on the calling domain
    while the span was open).  Spans nest naturally — {!with_span} inside
    {!with_span} — and spans opened on spawned domains carry that domain's id
    as the trace [tid], so a [Parallel.map_range] fan-out renders as one lane
    per domain in the viewer.

    Export is the Chrome trace-event format (complete ["ph":"X"] events),
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.
    Activation: set the [DCS_TRACE=<file>] environment variable (the file is
    written by an [at_exit] hook) or pass [--trace FILE] to the CLI.

    When {!Obs.tracing} is [false], {!with_span} runs its argument directly
    after a single flag check — no clock reads, no allocation. *)

type span = {
  name : string;
  tid : int;  (** id of the domain the span ran on *)
  ts_us : float;  (** start, microseconds since process start *)
  dur_us : float;
  minor_words : float;  (** words allocated in the domain's minor heap *)
  major_words : float;
  major_collections : int;  (** major GC cycles completed while open *)
  args : (string * string) list;  (** extra key/value payload *)
}

type counter_sample = {
  cname : string;  (** counter track name, e.g. ["memory"] *)
  ctid : int;
  cts_us : float;
  values : (string * float) list;  (** one series per key *)
}

val with_span : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_span ~name f] runs [f ()], recording a span around it when tracing
    is enabled.  The span is recorded (with the duration up to the raise)
    even if [f] raises; the exception is re-raised.  [args] adds extra
    key/value pairs to the event's [args] object.  Each span end also emits a
    ["memory"] counter sample (current [heap_words], plus [rss_kb] where
    procfs exists), wall-synchronized to the span's end timestamp. *)

val counter : ?ts_us:float -> name:string -> (string * float) list -> unit
(** [counter ~name values] records one sample of the counter track [name]
    (Chrome ["ph":"C"]; each key of [values] renders as one stacked series).
    No-op when tracing is disabled.  [ts_us] defaults to now. *)

val instant : ?args:(string * string) list -> string -> unit
(** [instant name] records a zero-duration instant event (a vertical tick in
    the viewer); no-op when tracing is disabled. *)

val enable : file:string -> unit
(** Turn tracing on and arrange for {!write} [file] to run at process exit.
    Idempotent: the last file wins, the exit hook is registered once. *)

val snapshot : unit -> span list
(** All spans recorded so far, in completion order.  Thread-safe. *)

val counter_snapshot : unit -> counter_sample list
(** All counter samples recorded so far, in record order.  Thread-safe. *)

val clear : unit -> unit
(** Drop all recorded spans and counter samples (tests). *)

val to_json : unit -> string
(** The recorded spans (["ph":"X"]) and counter samples (["ph":"C"]) as a
    Chrome trace-event JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val summary : unit -> (string * int * float) list
(** Per-span-name aggregate [(name, count, total_us)], sorted by name; the
    phase-breakdown table of the bench harness is rendered from this. *)

type profile_row = {
  pname : string;
  pcount : int;
  ptotal_us : float;
  pminor_words : float;
  pmajor_words : float;
  pmajor_collections : int;
}

val profile : unit -> profile_row list
(** Per-span-name wall/alloc/GC attribution, busiest first (ties broken by
    name).  The CLI's [--profile] table is rendered from this. *)

val write : string -> unit
(** Write {!to_json} to the given path. *)
