(** One schema for every bench block, and the regression gate over it.

    A report is the structured result of one bench block: identity (block
    name, scale, git revision, host, domain count) plus metric rows, each a
    [(name, value, unit)] with two bits of intent — [higher_is_better] (the
    regression direction) and [stable] (seeded-deterministic, so identical
    on every machine; wall times and RSS are not).  Blocks write
    [BENCH_<block>.json] into the directory named by [DCS_BENCH_DIR].

    Baselines are the stable rows only, combined over blocks into one
    committed document; [bench --compare BASELINE.json --tolerance <pct>]
    re-runs the blocks and fails when any stable metric moves past the
    tolerance band in its bad direction.  See EXPERIMENTS.md for the schema
    and the baseline-refresh workflow. *)

type t

type metric = {
  m_name : string;
  m_value : float;
  m_units : string;
  m_higher_is_better : bool;  (** regression direction; [false] = lower is better *)
  m_stable : bool;  (** deterministic under the seeded workload; baseline-eligible *)
}

val create : block:string -> scale:string -> t
(** A fresh report for one bench block at one scale ([quick] / [standard] /
    [full]). *)

val add : t -> ?higher_is_better:bool -> ?stable:bool -> units:string -> string -> float -> unit
(** [add t ~units name value] appends one metric row.  [higher_is_better]
    defaults to [false] (most metrics are costs), [stable] to [true].
    Raises [Invalid_argument] on an empty name. *)

val block_name : t -> string
val scale_name : t -> string

val metrics : t -> metric list
(** The rows in [add] order. *)

val to_json : t -> string
(** The [BENCH_<block>.json] document ([schema] key ["dcs-bench/1"]). *)

val write : dir:string -> t -> string
(** Write {!to_json} to [dir/BENCH_<block>.json]; returns the path. *)

val bench_dir : unit -> string option
(** The [DCS_BENCH_DIR] export directory, if set and nonempty. *)

val baseline_to_json : t list -> string
(** The combined baseline document ([schema] ["dcs-bench-baseline/1"]):
    stable metrics only, one entry per report. *)

val write_baseline : file:string -> t list -> unit
(** Write {!baseline_to_json} to [file]. *)

type verdict = {
  v_block : string;
  v_metric : string;
  v_units : string;
  v_baseline : float;
  v_current : float;  (** [nan] when the metric vanished from the current run *)
  v_delta_pct : float;  (** signed percent change relative to baseline *)
  v_regressed : bool;
}

val compare_json : baseline:string -> tolerance:float -> t list -> (verdict list, string) result
(** Judge the given reports against a baseline document (or a single block
    report).  [tolerance] is a percentage band around each baseline value; a
    metric regresses when it leaves the band in its bad direction, and a
    baseline metric missing from the current run always regresses.  Baseline
    blocks that did not run this invocation are skipped; matching zero
    blocks, a scale mismatch, or unparseable JSON is an [Error]. *)

val compare_file : file:string -> tolerance:float -> t list -> (verdict list, string) result
(** {!compare_json} over the contents of [file]. *)

val git_rev : unit -> string
(** [DCS_GIT_REV] if set, else the checkout's HEAD commit (short), else
    ["unknown"].  Never raises. *)
