type metric = {
  m_name : string;
  m_value : float;
  m_units : string;
  m_higher_is_better : bool;
  m_stable : bool;
}

type t = {
  block : string;
  scale : string;
  mutable metrics : metric list; (* reversed *)
}

let create ~block ~scale = { block; scale; metrics = [] }

let add t ?(higher_is_better = false) ?(stable = true) ~units name value =
  if name = "" then invalid_arg "Bench_report.add: empty metric name";
  t.metrics <-
    { m_name = name; m_value = value; m_units = units; m_higher_is_better = higher_is_better; m_stable = stable }
    :: t.metrics

let block_name t = t.block
let scale_name t = t.scale
let metrics t = List.rev t.metrics

(* ---- run identity ---- *)

(* Enough of the git state to label a report, without shelling out: honor an
   explicit DCS_GIT_REV, else follow .git/HEAD one level.  Reports must never
   fail because the tree isn't a checkout. *)
let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> match input_line ic with line -> Some (String.trim line) | exception End_of_file -> None)

let git_rev () =
  match Sys.getenv_opt "DCS_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> (
      let short h = if String.length h > 12 then String.sub h 0 12 else h in
      match read_first_line ".git/HEAD" with
      | None -> "unknown"
      | Some head ->
          let prefix = "ref: " in
          if String.length head > String.length prefix
             && String.sub head 0 (String.length prefix) = prefix
          then
            let refname = String.sub head (String.length prefix) (String.length head - String.length prefix) in
            match read_first_line (Filename.concat ".git" refname) with
            | Some h when h <> "" -> short h
            | _ -> "unknown"
          else short head)

(* Mirrors Parallel.default_domains (lib/util depends on us, so we cannot
   call it): DCS_DOMAINS clamped to [1, 64], else min(4, recommended). *)
let default_domains () =
  match Sys.getenv_opt "DCS_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some d -> max 1 (min 64 d) | None -> 1)
  | None -> max 1 (min 4 (Domain.recommended_domain_count ()))

(* ---- rendering ---- *)

let schema_version = "dcs-bench/1"
let baseline_schema_version = "dcs-bench-baseline/1"

let metric_json m =
  Printf.sprintf {|{"name":"%s","value":%s,"unit":"%s","higher_is_better":%b,"stable":%b}|}
    (Obs.json_escape m.m_name) (Obs.json_float m.m_value) (Obs.json_escape m.m_units)
    m.m_higher_is_better m.m_stable

let metrics_json ms =
  ms |> List.map (fun m -> "\n    " ^ metric_json m) |> String.concat ","

let to_json t =
  Printf.sprintf
    {|{
  "schema":"%s",
  "block":"%s",
  "scale":"%s",
  "git_rev":"%s",
  "host":"%s",
  "domains":%d,
  "unix_time":%.0f,
  "metrics":[%s]
}
|}
    schema_version (Obs.json_escape t.block) (Obs.json_escape t.scale)
    (Obs.json_escape (git_rev ()))
    (Obs.json_escape (Unix.gethostname ()))
    (default_domains ()) (Unix.time ())
    (metrics_json (metrics t) ^ if t.metrics = [] then "" else "\n  ")

let bench_dir () =
  match Sys.getenv_opt "DCS_BENCH_DIR" with
  | Some d when String.trim d <> "" -> Some (String.trim d)
  | _ -> None

let write ~dir t =
  let path = Filename.concat dir ("BENCH_" ^ t.block ^ ".json") in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t));
  path

(* Baselines keep only the stable (seeded-deterministic) metrics: wall times
   and RSS vary by machine, so committing them would make the compare gate
   flap.  Stability is declared at [add] time by the block that owns the
   metric. *)
let baseline_to_json reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\":\"%s\",\n  \"scale\":\"%s\",\n  \"blocks\":["
       baseline_schema_version
       (match reports with [] -> "" | r :: _ -> Obs.json_escape r.scale));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let stable = List.filter (fun m -> m.m_stable) (metrics r) in
      Buffer.add_string buf
        (Printf.sprintf "\n  {\"block\":\"%s\",\"metrics\":[%s]}" (Obs.json_escape r.block)
           (String.concat "," (List.map metric_json stable))))
    reports;
  Buffer.add_string buf "\n]\n}\n";
  Buffer.contents buf

let write_baseline ~file reports =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (baseline_to_json reports))

(* ---- a minimal JSON reader, just enough for our own documents ---- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'u' ->
              (* we only read our own ASCII output; keep the escape verbatim *)
              Buffer.add_string buf "\\u";
              advance ();
              go ()
          | Some c -> Buffer.add_char buf c; advance (); go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Jobj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jlist []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Jlist (List.rev !items)
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function Jobj kvs -> List.assoc_opt key kvs | _ -> None

let str_of = function Jstr s -> Some s | _ -> None
let num_of = function Jnum f -> Some f | Jnull -> Some Float.nan | _ -> None
let bool_of = function Jbool b -> Some b | _ -> None
let list_of = function Jlist l -> Some l | _ -> None

(* ---- regression compare ---- *)

type verdict = {
  v_block : string;
  v_metric : string;
  v_units : string;
  v_baseline : float;
  v_current : float;
  v_delta_pct : float;
  v_regressed : bool;
}

let delta_pct ~baseline ~current =
  if Float.is_nan current then Float.nan
  else if baseline = 0.0 then if current = 0.0 then 0.0 else 100.0
  else (current -. baseline) /. Float.abs baseline *. 100.0

(* A metric regresses when it moves past the tolerance band in its bad
   direction; a missing or non-finite current value is always a regression
   (schema drift is exactly what the gate must catch). *)
let judge ~tolerance ~higher_is_better ~baseline ~current =
  if Float.is_nan current then true
  else begin
    let band = Float.abs baseline *. (tolerance /. 100.0) in
    if higher_is_better then current < baseline -. band -. 1e-9
    else current > baseline +. band +. 1e-9
  end

let baseline_blocks doc =
  (* accept both a combined baseline document and a single BENCH_<block>.json *)
  match member "blocks" doc with
  | Some (Jlist blocks) -> Some blocks
  | Some _ -> None
  | None -> ( match member "block" doc with Some _ -> Some [ doc ] | None -> None)

let compare_json ~baseline ~tolerance reports =
  match parse_json baseline with
  | exception Parse_error msg -> Error (Printf.sprintf "baseline: %s" msg)
  | doc -> (
      match baseline_blocks doc with
      | None -> Error "baseline: neither a baseline document nor a block report"
      | Some blocks -> (
          let scale_mismatch =
            match (member "scale" doc, reports) with
            | Some (Jstr s), r :: _ when s <> r.scale ->
                Some (Printf.sprintf "baseline scale %S but current run is %S" s r.scale)
            | _ -> None
          in
          match scale_mismatch with
          | Some msg -> Error msg
          | None ->
              let verdicts = ref [] in
              let matched = ref 0 in
              List.iter
                (fun b ->
                  let bname = Option.bind (member "block" b) str_of in
                  let bmetrics = Option.bind (member "metrics" b) list_of in
                  match (bname, bmetrics) with
                  | Some bname, Some bmetrics -> (
                      match List.find_opt (fun r -> r.block = bname) reports with
                      | None -> () (* baseline block not exercised this run *)
                      | Some r ->
                          incr matched;
                          List.iter
                            (fun bm ->
                              match
                                ( Option.bind (member "name" bm) str_of,
                                  Option.bind (member "value" bm) num_of )
                              with
                              | Some mname, Some bval ->
                                  let units =
                                    match Option.bind (member "unit" bm) str_of with
                                    | Some u -> u
                                    | None -> ""
                                  in
                                  let higher =
                                    match Option.bind (member "higher_is_better" bm) bool_of with
                                    | Some h -> h
                                    | None -> false
                                  in
                                  let cur =
                                    match
                                      List.find_opt (fun m -> m.m_name = mname) (metrics r)
                                    with
                                    | Some m -> m.m_value
                                    | None -> Float.nan
                                  in
                                  verdicts :=
                                    {
                                      v_block = bname;
                                      v_metric = mname;
                                      v_units = units;
                                      v_baseline = bval;
                                      v_current = cur;
                                      v_delta_pct = delta_pct ~baseline:bval ~current:cur;
                                      v_regressed =
                                        judge ~tolerance ~higher_is_better:higher ~baseline:bval
                                          ~current:cur;
                                    }
                                    :: !verdicts
                              | _ -> ())
                            bmetrics)
                  | _ -> ())
                blocks;
              if !matched = 0 then
                Error "baseline matched none of the blocks that ran (nothing to compare)"
              else Ok (List.rev !verdicts)))

let compare_file ~file ~tolerance reports =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
      let body =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      compare_json ~baseline:body ~tolerance reports
