(** Process resource gauges: heap size and resident-set size.

    {!sample} snapshots both and records them twice over — as the
    [resource.heap_words] / [resource.rss_kb] gauges (so metric dumps carry
    [last] and [peak]) and as a ["memory"] Chrome-trace counter sample (so
    traces show the memory timeline).  Call it at phase boundaries: the CLI
    samples at startup and exit, the bench harness around every block, and
    {!Trace.with_span} emits the trace-side sample at every span end on its
    own.

    Peaks are only as good as the sampling points — this is checkpoint
    sampling, not an allocator hook.  A no-op unless metrics or tracing is
    enabled. *)

val sample : unit -> unit
(** Record one heap/RSS snapshot into the gauges (metrics enabled) and the
    ["memory"] trace counter (tracing enabled); no-op when both are off. *)

val heap_words : unit -> int
(** Current major+minor heap size in words ([Gc.quick_stat]); always
    available regardless of the observability flags. *)

val rss_kb : unit -> int option
(** Current resident-set size in KiB; [None] without procfs.  Alias of
    {!Obs.rss_kb}. *)

val peak_rss_kb : unit -> int
(** Largest RSS seen by any {!sample} so far (0 before the first enabled
    sample or without procfs). *)

val peak_heap_words : unit -> int
(** Largest heap size seen by any {!sample} so far. *)
