(** Runtime switches and shared helpers for the observability layer.

    {!Trace} and {!Metrics} are designed to cost nothing when disabled: every
    instrumentation call site checks exactly one of the two flags below (a
    plain [bool ref] read and branch) before doing any work.  The flags are
    flipped once at startup — by the [DCS_TRACE] / [DCS_METRICS] environment
    variables or the CLI [--trace] / [--metrics] options — and never change
    mid-run, so the check is branch-predictor-friendly.

    Nothing in this library consumes [Prng.t] streams or mutates algorithm
    state: enabling observability can never change a computed result (the
    determinism contract of HACKING.md). *)

val tracing : bool ref
(** When [false] (the default), {!Trace.with_span} is a tail call to its
    argument. *)

val metrics : bool ref
(** When [false] (the default), all {!Metrics} mutators are no-ops. *)

val set_tracing : bool -> unit
(** Flip {!tracing}; used by {!Trace.enable} and by the tests. *)

val set_metrics : bool -> unit
(** Flip {!metrics}; used by {!Metrics.enable} and by the tests. *)

val now_us : unit -> float
(** Wall-clock microseconds since an arbitrary process-local epoch
    (monotone enough for span durations; spans are milliseconds-scale). *)

val json_escape : string -> string
(** [json_escape s] is [s] with ["], [\ ] and control characters escaped so
    that ["\"" ^ json_escape s ^ "\""] is a valid JSON string literal. *)

val json_float : float -> string
(** A JSON-parseable rendering of a float.  [nan] and the infinities map to
    [null] — JSON has no spelling for them, and fabricating [0] would smuggle
    an invented value into means and durations. *)

val rss_kb : unit -> int option
(** The process resident-set size in KiB, read from [/proc/self/statm].
    [None] where procfs is unavailable (the probe is attempted once and the
    failure latched, so repeated calls stay cheap everywhere). *)
