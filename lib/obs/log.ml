type level = Debug | Info | Warn | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type entry = {
  ts_us : float;
  level : level;
  event : string;
  domain : int;
  fields : (string * string) list;
}

(* The off threshold is one past Error: no level passes, [event] is a load,
   a compare and a return.
   DOMAIN-SAFE: [threshold] is an [Atomic.t] read on the hot path and written
   only by [set_level]/[enable] during single-domain startup (or by tests
   between parallel sections); a stale read drops or admits one entry, never
   corrupts. *)
let off = level_index Error + 1
let threshold = Atomic.make off

let enabled level = level_index level >= Atomic.get threshold

(* Ring buffer of the most recent entries, for tests and post-mortem dumps
   that don't want a sink file.  1024 entries is enough to hold a full fault
   sweep's event stream at quick scale.
   DOMAIN-SAFE: [ring], [cursor], [total] and [sink] are only touched under
   [mutex] (or by [enable] during single-domain startup). *)
let capacity = 1024
let mutex = Mutex.create ()
let ring : entry option array = Array.make capacity None
let cursor = ref 0
let total = ref 0
let sink : out_channel option ref = ref None
let hook_registered = ref false

let render e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf {|{"ts_us":%s,"level":"%s","event":"%s","domain":%d|}
       (Obs.json_float e.ts_us) (level_name e.level) (Obs.json_escape e.event) e.domain);
  if e.fields <> [] then begin
    Buffer.add_string buf ",\"fields\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf {|"%s":"%s"|} (Obs.json_escape k) (Obs.json_escape v)))
      e.fields;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let record e =
  Mutex.protect mutex (fun () ->
      ring.(!cursor) <- Some e;
      cursor := (!cursor + 1) mod capacity;
      incr total;
      match !sink with
      | None -> ()
      | Some oc -> (
          (* per-line flush: the sink must be tailable and survive a crash;
             a sink already closed by the exit hook must not raise *)
          try
            output_string oc (render e);
            output_char oc '\n';
            flush oc
          with Sys_error _ -> sink := None))

(* When no logging is configured at all, errors still surface as one stderr
   line each — these sites replaced bare [eprintf] warnings and must not go
   silent by default.  Lower levels are dropped: a disabled log must never
   spam stderr from inside a hot loop. *)
let fallback_stderr e =
  let fields =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) e.fields)
  in
  Printf.eprintf "dcs: [%s] %s%s\n%!" (level_name e.level) e.event fields

let event ?(fields = []) level name =
  if enabled level then
    record { ts_us = Obs.now_us (); level; event = name; domain = (Domain.self () :> int); fields }
  else if level = Error && Atomic.get threshold >= off then
    fallback_stderr
      { ts_us = Obs.now_us (); level; event = name; domain = (Domain.self () :> int); fields }

let debug ?fields name = event ?fields Debug name
let info ?fields name = event ?fields Info name
let warn ?fields name = event ?fields Warn name
let error ?fields name = event ?fields Error name

let recent () =
  Mutex.protect mutex (fun () ->
      let n = min !total capacity in
      let first = if !total <= capacity then 0 else !cursor in
      List.init n (fun i ->
          match ring.((first + i) mod capacity) with
          | Some e -> e
          | None -> assert false))

let clear () =
  Mutex.protect mutex (fun () ->
      Array.fill ring 0 capacity None;
      cursor := 0;
      total := 0)

let set_level level = Atomic.set threshold (level_index level)

let disable () =
  Atomic.set threshold off;
  Mutex.protect mutex (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      sink := None)

(* An unopenable sink must not turn the run into a crash; keep the ring and
   the level so [recent] still works. *)
let enable ?(level = Info) ~file () =
  set_level level;
  Mutex.protect mutex (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      match open_out file with
      | oc ->
          sink := Some oc;
          if not !hook_registered then begin
            hook_registered := true;
            at_exit (fun () ->
                Mutex.protect mutex (fun () ->
                    match !sink with
                    | Some oc ->
                        close_out_noerr oc;
                        sink := None
                    | None -> ()))
          end
      | exception Sys_error msg ->
          sink := None;
          Printf.eprintf "dcs_obs: cannot open log sink: %s\n%!" msg)

let () =
  match Sys.getenv_opt "DCS_LOG" with
  | Some f when String.trim f <> "" ->
      let level =
        match Sys.getenv_opt "DCS_LOG_LEVEL" with
        | Some s -> ( match level_of_string s with Some l -> l | None -> Info)
        | None -> Info
      in
      enable ~level ~file:(String.trim f) ()
  | _ -> ()
